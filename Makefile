GO ?= go

.PHONY: build test vet bench race examples ci chaos fuzz figures bench-liveness bench-coalesce bench-translate bench-translate-check bench-scale bench-serve bench-memo bench-all bench-compare bench-store-list

# Scale of the liveness trajectory corpus; CI uses the short default, local
# runs can pass LIVENESS_SCALE=1 for the full thousands-of-blocks corpus.
LIVENESS_SCALE ?= 0.05
# Scale of the coalescing trajectory corpus (same convention).
COALESCE_SCALE ?= 0.05
# Scale of the end-to-end translate trajectory corpus (same convention).
# The committed BENCH_translate.json baseline is recorded at this scale, so
# the bench-compare gate compares like with like.
TRANSLATE_SCALE ?= 0.05
# Scale of the multicore batch corpus (same convention); the worker sweep
# itself is fixed at 1..32 workers x GOGC {off,100,400}.
SCALE_SCALE ?= 0.05
# Parallel-efficiency floor of the scale gate (at 8 workers, normalized by
# available cores; 0 disables).
SCALE_MINEFF ?= 0.6
# Offered-load sweep of the serving-latency trajectory (concurrent
# closed-loop clients driving a self-hosted daemon over loopback HTTP),
# the measurement window per point, and the corpus size.
SERVE_LOADS ?= 1,2,4
SERVE_DURATION ?= 2s
SERVE_FUNCS ?= 64
# Memoization trajectory: base functions, near-duplicate clones per base,
# best-of repetitions per timed pass, and the daemon-traffic point.
MEMO_FUNCS ?= 12
MEMO_CLONES ?= 3
MEMO_REPS ?= 3
MEMO_LOADS ?= 2
MEMO_DURATION ?= 1s
# Measurement passes per trajectory run: every metric collects BENCH_COUNT
# samples so the compare gate reasons about medians, not single points.
BENCH_COUNT ?= 3
# Persistent bench store directory; every bench-* run appends its envelope
# here. `make bench-store-list` shows the accumulated runs.
BENCH_STORE ?= .ssabench
# Baseline reference for bench-compare: a committed BENCH_<traj>.json file
# (the default, substituted per trajectory) or any store reference
# (a snapshot name, an id prefix, latest:<trajectory>).
BENCH_BASELINE ?=
# Extra compare flags, e.g. BENCH_COMPARE_FLAGS=-allow-machine-mismatch
# when gating against a baseline recorded on different hardware.
BENCH_COMPARE_FLAGS ?=

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

race:
	$(GO) test -race ./...

examples:
	$(GO) build ./examples/...

# Chaos suite: a self-hosted daemon under mixed traffic with seeded
# failpoints firing in every layer, run under the race detector. CI uses
# CHAOS_DURATION=15s; the default keeps local runs fast.
CHAOS_DURATION ?= 2s
chaos:
	SSAD_CHAOS_DURATION=$(CHAOS_DURATION) $(GO) test -race -count=1 -run 'TestChaos$$' -v ./outofssa/serve

# Fuzz both targets briefly: the parser (never panic, print/re-parse) and
# the translate differential oracle (reference vs optimized machinery,
# interpreter-checked). The committed seed corpus lives in
# outofssa/testdata/fuzz/.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME) ./outofssa
	$(GO) test -run '^$$' -fuzz 'FuzzTranslate$$' -fuzztime $(FUZZTIME) ./outofssa

figures:
	$(GO) run ./cmd/ssabench -fig all

# Every trajectory goes through the same path: measure BENCH_COUNT passes
# into one report envelope, write the committed-format BENCH_<traj>.json,
# and append the envelope to the persistent store. Gating is a separate
# step (bench-compare / bench-<traj>-check) over the store or the
# committed files.

# Benchmark the worklist liveness engine against the pre-worklist baseline
# on the synthetic large-CFG corpus.
bench-liveness:
	$(GO) run ./cmd/ssabench -fig liveness -scale $(LIVENESS_SCALE) -count $(BENCH_COUNT) \
		-store $(BENCH_STORE) -out BENCH_liveness.json

# Benchmark the optimized interference query path (binary-search LiveAfter,
# packed def-point keys, pooled congruence scratch) against the kept
# reference path on the φ/copy-dense corpus.
bench-coalesce:
	$(GO) run ./cmd/ssabench -fig coalesce -scale $(COALESCE_SCALE) -count $(BENCH_COUNT) \
		-store $(BENCH_STORE) -out BENCH_coalesce.json

# Benchmark end-to-end clone+translate steady state: the pooled-scratch and
# slab allocation path against the kept pre-pooling reference, across all
# Figure 5 strategies.
bench-translate:
	$(GO) run ./cmd/ssabench -fig translate -scale $(TRANSLATE_SCALE) -count $(BENCH_COUNT) \
		-store $(BENCH_STORE) -out BENCH_translate.json

# Same measurement, gated in-process against the committed baseline under
# the trajectory's standing policies (allocs/op within 20%, quality never
# worse). The fresh measurement goes to BENCH_translate.ci.json so the
# committed baseline is never silently replaced by a within-slack
# regression.
bench-translate-check:
	$(GO) run ./cmd/ssabench -fig translate -scale $(TRANSLATE_SCALE) -count $(BENCH_COUNT) \
		-store $(BENCH_STORE) -against BENCH_translate.json $(BENCH_COMPARE_FLAGS) -out BENCH_translate.ci.json

# Sweep the work-stealing batch driver over workers x GOGC on the batch
# corpus; the parallel-efficiency floor at 8 workers gates via the scale
# trajectory's standing policies.
bench-scale:
	$(GO) run ./cmd/ssabench -fig scale -scale $(SCALE_SCALE) -count $(BENCH_COUNT) -mineff $(SCALE_MINEFF) \
		-store $(BENCH_STORE) -out BENCH_scale.json

# Drive a self-hosted ssad over loopback HTTP at a sweep of offered-load
# points and record the serving-latency trajectory (throughput + latency
# quantiles per concurrency level); the serve policies fail the target on
# hard failures or incoherent quantiles.
bench-serve:
	$(GO) run ./cmd/ssaload -loads $(SERVE_LOADS) -duration $(SERVE_DURATION) -funcs $(SERVE_FUNCS) \
		-store $(BENCH_STORE) -out BENCH_serve.json

# Measure content-hash translation memoization on a near-duplicate corpus:
# uncached / memo-cold / memo-warm batch passes, the differential oracle on
# every case x strategy row, and a daemon-traffic point with the server's
# memo hit rate. The memo policies fail the target unless the warm pass is
# >=2x faster than cold with a full hit rate and every oracle row is clean.
bench-memo:
	$(GO) run ./cmd/ssaload -dup -funcs $(MEMO_FUNCS) -clones $(MEMO_CLONES) -reps $(MEMO_REPS) \
		-loads $(MEMO_LOADS) -duration $(MEMO_DURATION) -store $(BENCH_STORE) -out BENCH_memo.json

# All six trajectories through the shared path in one command.
bench-all: bench-liveness bench-coalesce bench-translate bench-scale bench-serve bench-memo

# Statistical A/B gate: compare the latest stored run of TRAJ against the
# baseline (default: the committed BENCH_$(TRAJ).json) under the
# trajectory's standing policies; exits nonzero on any violation.
#
#	make bench-translate bench-compare TRAJ=translate
#	make bench-compare TRAJ=scale BENCH_BASELINE=v1-scale-snapshot
TRAJ ?= translate
bench-compare:
	$(GO) run ./cmd/ssabench compare -store $(BENCH_STORE) \
		-baseline $(or $(BENCH_BASELINE),BENCH_$(TRAJ).json) -candidate latest:$(TRAJ) \
		-mineff $(SCALE_MINEFF) $(BENCH_COMPARE_FLAGS)

bench-store-list:
	$(GO) run ./cmd/ssabench store list -store $(BENCH_STORE)

ci: vet build test race examples chaos bench-memo
