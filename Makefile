GO ?= go

.PHONY: build test vet bench ci figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

figures:
	$(GO) run ./cmd/ssabench -fig all

ci: vet build test
