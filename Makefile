GO ?= go

.PHONY: build test vet bench race examples ci figures bench-liveness bench-coalesce

# Scale of the liveness trajectory corpus; CI uses the short default, local
# runs can pass LIVENESS_SCALE=1 for the full thousands-of-blocks corpus.
LIVENESS_SCALE ?= 0.05
# Scale of the coalescing trajectory corpus (same convention).
COALESCE_SCALE ?= 0.05

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

race:
	$(GO) test -race ./...

examples:
	$(GO) build ./examples/...

figures:
	$(GO) run ./cmd/ssabench -fig all

# Benchmark the worklist liveness engine against the pre-worklist baseline
# on the synthetic large-CFG corpus and record the trajectory file CI
# archives per run.
bench-liveness:
	$(GO) run ./cmd/ssabench -fig liveness -scale $(LIVENESS_SCALE) -out BENCH_liveness.json

# Benchmark the optimized interference query path (binary-search LiveAfter,
# packed def-point keys, pooled congruence scratch) against the kept
# reference path on the φ/copy-dense corpus.
bench-coalesce:
	$(GO) run ./cmd/ssabench -fig coalesce -scale $(COALESCE_SCALE) -out BENCH_coalesce.json

ci: vet build test race examples
