GO ?= go

.PHONY: build test vet bench race examples ci figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

race:
	$(GO) test -race ./...

examples:
	$(GO) build ./examples/...

figures:
	$(GO) run ./cmd/ssabench -fig all

ci: vet build test race examples
