GO ?= go

.PHONY: build test vet bench race examples ci figures bench-liveness bench-coalesce bench-translate bench-translate-check bench-scale bench-serve

# Scale of the liveness trajectory corpus; CI uses the short default, local
# runs can pass LIVENESS_SCALE=1 for the full thousands-of-blocks corpus.
LIVENESS_SCALE ?= 0.05
# Scale of the coalescing trajectory corpus (same convention).
COALESCE_SCALE ?= 0.05
# Scale of the end-to-end translate trajectory corpus (same convention).
# The committed BENCH_translate.json baseline is recorded at this scale, so
# the bench-translate-check gate compares like with like.
TRANSLATE_SCALE ?= 0.05
# Scale of the multicore batch corpus (same convention); the worker sweep
# itself is fixed at 1..32 workers x GOGC {off,100,400}.
SCALE_SCALE ?= 0.05
# Parallel-efficiency floor of the bench-scale gate (at 8 workers,
# normalized by available cores; 0 disables).
SCALE_MINEFF ?= 0.6
# Offered-load sweep of the serving-latency trajectory (concurrent
# closed-loop clients driving a self-hosted daemon over loopback HTTP),
# the measurement window per point, and the corpus size.
SERVE_LOADS ?= 1,2,4
SERVE_DURATION ?= 2s
SERVE_FUNCS ?= 64

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem ./...

race:
	$(GO) test -race ./...

examples:
	$(GO) build ./examples/...

figures:
	$(GO) run ./cmd/ssabench -fig all

# Benchmark the worklist liveness engine against the pre-worklist baseline
# on the synthetic large-CFG corpus and record the trajectory file CI
# archives per run.
bench-liveness:
	$(GO) run ./cmd/ssabench -fig liveness -scale $(LIVENESS_SCALE) -out BENCH_liveness.json

# Benchmark the optimized interference query path (binary-search LiveAfter,
# packed def-point keys, pooled congruence scratch) against the kept
# reference path on the φ/copy-dense corpus.
bench-coalesce:
	$(GO) run ./cmd/ssabench -fig coalesce -scale $(COALESCE_SCALE) -out BENCH_coalesce.json

# Benchmark end-to-end clone+translate steady state: the pooled-scratch and
# slab allocation path against the kept pre-pooling reference, across all
# Figure 5 strategies.
bench-translate:
	$(GO) run ./cmd/ssabench -fig translate -scale $(TRANSLATE_SCALE) -out BENCH_translate.json

# Same measurement, gated against the committed baseline: any pooled row
# allocating more than 20% over BENCH_translate.json's allocs/op fails.
# The fresh measurement goes to BENCH_translate.ci.json so the committed
# baseline is never silently replaced by a within-slack regression.
bench-translate-check:
	$(GO) run ./cmd/ssabench -fig translate -scale $(TRANSLATE_SCALE) -against BENCH_translate.json -out BENCH_translate.ci.json

# Sweep the work-stealing batch driver over workers x GOGC on the batch
# corpus, record the speedup-vs-cores trajectory, and gate on parallel
# efficiency at 8 workers (speedup / available cores >= SCALE_MINEFF).
bench-scale:
	$(GO) run ./cmd/ssabench -fig scale -scale $(SCALE_SCALE) -mineff $(SCALE_MINEFF) -out BENCH_scale.json

# Drive a self-hosted ssad over loopback HTTP at a sweep of offered-load
# points and record the serving-latency trajectory (throughput + latency
# quantiles per concurrency level); the built-in smoke gate fails the
# target on hard failures or incoherent quantiles.
bench-serve:
	$(GO) run ./cmd/ssaload -loads $(SERVE_LOADS) -duration $(SERVE_DURATION) -funcs $(SERVE_FUNCS) -out BENCH_serve.json

ci: vet build test race examples
