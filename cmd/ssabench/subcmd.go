package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/outofssa/bench"
	"repro/outofssa/bench/compare"
	"repro/outofssa/bench/store"
)

// storeCmd implements `ssabench store <list|snapshot|export>`.
func storeCmd(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "ssabench store: need a subcommand: list, snapshot, export")
		return 2
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	dir := fs.String("store", store.DefaultDir, "bench store directory")
	switch sub {
	case "list":
		fs.Parse(rest)
		return storeList(*dir)
	case "snapshot":
		name := fs.String("name", "", "snapshot name to assign")
		ref := fs.String("ref", "latest", "run to name: latest, latest:<trajectory>, an id prefix, or an existing snapshot")
		fs.Parse(rest)
		if *name == "" {
			fmt.Fprintln(os.Stderr, "ssabench store snapshot: -name is required")
			return 2
		}
		st, err := store.Open(*dir)
		if err == nil {
			err = st.Snapshot(*name, *ref)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		fmt.Printf("snapshot %s -> %s\n", *name, *ref)
		return 0
	case "export":
		ref := fs.String("ref", "latest", "run to export")
		out := fs.String("o", "", "output file (default stdout)")
		fs.Parse(rest)
		st, err := store.Open(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := st.Export(w, *ref); err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		if *out != "" {
			fmt.Printf("exported %s to %s\n", *ref, *out)
		}
		return 0
	default:
		fmt.Fprintf(os.Stderr, "ssabench store: unknown subcommand %q (list, snapshot, export)\n", sub)
		return 2
	}
}

func storeList(dir string) int {
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	entries, skipped, err := st.List()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	snaps, err := st.Snapshots()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	byID := map[string][]string{}
	for name, id := range snaps {
		byID[id] = append(byID[id], name)
	}
	fmt.Printf("%-16s  %-10s  %-20s  %-10s  %s\n", "id", "trajectory", "timestamp", "commit", "snapshots")
	for _, e := range entries {
		fmt.Printf("%-16s  %-10s  %-20s  %-10s  %s\n",
			e.ID, e.Trajectory, e.Timestamp, e.Commit, strings.Join(byID[e.ID], ","))
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "ssabench: warning: skipped %d corrupt run-log lines\n", skipped)
	}
	return 0
}

// compareCmd implements `ssabench compare`: resolve two envelopes (files
// or store references), apply the trajectory's standing policies, and exit
// nonzero on any violation.
func compareCmd(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	dir := fs.String("store", store.DefaultDir, "bench store directory (for non-file references)")
	baseRef := fs.String("baseline", "", "baseline: an envelope file, or a store reference")
	candRef := fs.String("candidate", "latest", "candidate: an envelope file, or a store reference")
	minEff := fs.Float64("mineff", 0.6, "scale trajectory: minimum parallel efficiency at 8 workers (0 disables)")
	allowMismatch := fs.Bool("allow-machine-mismatch", false, "compare across machine shapes, skipping wall-clock gates")
	inject := fs.String("inject", "", "synthetically regress one candidate metric, e.g. allocs_per_op=+50% (CI gate self-test)")
	fs.Parse(args)
	if *baseRef == "" {
		fmt.Fprintln(os.Stderr, "ssabench compare: -baseline is required")
		return 2
	}

	baseline, err := resolveReport(*dir, *baseRef)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: baseline: %v\n", err)
		return 1
	}
	candidate, err := resolveReport(*dir, *candRef)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: candidate: %v\n", err)
		return 1
	}
	if *inject != "" {
		if err := injectRegression(candidate, *inject); err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 2
		}
		fmt.Printf("injected synthetic regression: %s\n", *inject)
	}
	res, err := compare.Compare(baseline, candidate,
		compare.DefaultPolicies(candidate.Trajectory, *minEff),
		compare.Options{AllowMachineMismatch: *allowMismatch})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	fmt.Print(res.Format())
	if !res.OK() {
		return 1
	}
	return 0
}

// resolveReport loads an envelope from a file path or a store reference.
func resolveReport(dir, ref string) (*bench.Report, error) {
	if _, err := os.Stat(ref); err == nil {
		return bench.ReadReportFile(ref)
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	e, err := st.Resolve(ref)
	if err != nil {
		return nil, err
	}
	return e.Report, nil
}

// injectRegression worsens one metric of the report in place. spec is
// "metric=+P%" (or "-P%"): every sample of that metric is scaled by
// 1+P/100, so +50% on allocs_per_op is a regression while -50% on
// warm_speedup is one too — the sign follows the spec, the gate direction
// follows the metric registry.
func injectRegression(rep *bench.Report, spec string) error {
	name, pct, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("invalid -inject %q (want metric=+P%%)", spec)
	}
	p, err := strconv.ParseFloat(strings.TrimSuffix(pct, "%"), 64)
	if err != nil {
		return fmt.Errorf("invalid -inject percentage %q: %v", pct, err)
	}
	factor := 1 + p/100
	touched := 0
	for i := range rep.Rows {
		if m := rep.Rows[i].Metric(name); m != nil {
			for j := range m.Samples {
				m.Samples[j] *= factor
			}
			touched++
		}
	}
	if touched == 0 {
		return fmt.Errorf("-inject: no row carries metric %q", name)
	}
	return nil
}
