// Command ssabench regenerates the paper's evaluation figures on the
// synthetic SPEC CINT2000 stand-in suite:
//
//	ssabench -fig 5           # remaining copies per coalescing strategy
//	ssabench -fig 5 -strategy sharing   # one strategy vs the Intersect baseline
//	ssabench -fig 6 -reps 3   # translation speed per machinery combination
//	ssabench -fig 7           # memory footprint per machinery combination
//	ssabench -fig all         # every paper figure (5, 6 and 7)
//
// Beyond the paper's figures it records the engine's perf trajectories
// (long-running benchmarks, deliberately not part of -fig all). Every
// trajectory emits the same versioned report envelope — run metadata
// (commit, machine shape, GOMAXPROCS, GOGC, timestamp) plus rows of named
// metric samples — repeated -count times so the compare gate has real
// variance to work with:
//
//	ssabench -fig liveness -count 3 -out BENCH_liveness.json
//	ssabench -fig coalesce -count 3 -store .ssabench
//	ssabench -fig translate -against BENCH_translate.json -out BENCH_translate.json
//	ssabench -fig scale -store .ssabench -mineff 0.6
//
// -fig liveness benchmarks the worklist liveness engine against the
// pre-worklist round-robin fixpoint; -fig coalesce benchmarks the
// optimized interference query path against the kept reference path;
// -fig translate benchmarks the end-to-end clone+translate steady state
// (pooled vs reference allocation) across all Figure 5 strategies;
// -fig scale sweeps the work-stealing batch driver over worker counts ×
// GOGC settings. -out writes the envelope to a file (the committed
// BENCH_*.json format); -store appends it to the persistent bench store;
// -against gates the run against a baseline (a file or a store reference)
// under the trajectory's standing policies — allocs/op within 20%,
// translation quality never worse, efficiency floors — and exits 1 on any
// violation.
//
// The store and comparison are also first-class subcommands:
//
//	ssabench store list
//	ssabench store snapshot -name v1-baseline -ref latest:translate
//	ssabench store export -ref v1-baseline -o BENCH_translate.json
//	ssabench compare -baseline BENCH_translate.json -candidate latest:translate
//	ssabench compare -baseline v1 -candidate latest -inject allocs_per_op=+50%
//
// compare exits 0 when every gate passes and 1 otherwise; -inject
// synthetically regresses one candidate metric so CI can demonstrate the
// gate actually fires. Baselines recorded on another machine shape refuse
// to compare unless -allow-machine-mismatch, which skips wall-clock gates
// (loudly) but keeps allocation and quality gates — those are
// machine-neutral.
//
// -scale shrinks or grows the workload (the trajectory corpora included);
// -weighted adds the frequency-weighted companion of Figure 5; -workers
// sets the batch driver's worker pool for the untimed figures (0 =
// GOMAXPROCS). -cpuprofile and -memprofile write pprof profiles of the
// run, so a flat spot found by the scale sweep can be attributed directly:
//
//	ssabench -fig scale -cpuprofile scale.cpu.pprof
//	go tool pprof scale.cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/cmd/internal/profileflags"
	"repro/outofssa"
	"repro/outofssa/bench"
	"repro/outofssa/bench/compare"
	"repro/outofssa/bench/store"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "store":
			os.Exit(storeCmd(os.Args[2:]))
		case "compare":
			os.Exit(compareCmd(os.Args[2:]))
		}
	}

	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, or all (paper figures); liveness, coalesce, translate and scale run the perf trajectories instead")
	scale := flag.Float64("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "timing repetitions for figure 6")
	count := flag.Int("count", 3, "measurement passes per trajectory (samples per metric)")
	weighted := flag.Bool("weighted", false, "also print the frequency-weighted figure 5 table")
	workers := flag.Int("workers", 0, "pipeline batch workers for figures 5 and 7 (0 = GOMAXPROCS)")
	out := flag.String("out", "", "with a trajectory -fig: write the report envelope as JSON to this file")
	storeDir := flag.String("store", "", "with a trajectory -fig: append the envelope to this bench store directory")
	against := flag.String("against", "", "with a trajectory -fig: gate against this baseline (an envelope file, or a store reference when -store is set)")
	allowMismatch := flag.Bool("allow-machine-mismatch", false, "with -against: compare across machine shapes, skipping wall-clock gates")
	minEff := flag.Float64("mineff", 0.6, "with -fig scale: minimum parallel efficiency at 8 workers (0 disables the gate)")
	commit := flag.String("commit", "", "commit id recorded in the envelope (default $SSABENCH_COMMIT)")
	strategy := flag.String("strategy", "all",
		"restrict figure 5 to one coalescing strategy: all, or one of "+strings.Join(outofssa.StrategyNames(), "|"))
	profileflags.Register()
	flag.Parse()

	strategies := outofssa.Strategies
	if *strategy != "all" {
		s, err := outofssa.ParseStrategy(*strategy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			os.Exit(2)
		}
		strategies = []outofssa.Strategy{s}
	}
	if *commit != "" {
		bench.Commit = *commit
	}

	bench.Workers = *workers
	os.Exit(run(*fig, *scale, *reps, *count, *weighted, *out, *storeDir, *against, *allowMismatch, *minEff, strategies))
}

// run dispatches the figure and returns the process exit code. It exists
// (instead of os.Exit calls inside the figure functions) so the deferred
// profile writers always flush — an os.Exit on a gate failure would
// otherwise truncate the very profile needed to debug the regression.
func run(fig string, scale float64, reps, count int, weighted bool, out, storeDir, against string, allowMismatch bool, minEff float64, strategies []outofssa.Strategy) int {
	stop, err := profileflags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	defer stop()

	var runner bench.Runner
	switch fig { // the trajectories have their own corpora; no SPEC suite
	case "liveness":
		runner = bench.LivenessRunner(scale)
	case "coalesce":
		runner = bench.CoalesceRunner(scale)
	case "translate":
		runner = bench.TranslateRunner(scale)
	case "scale":
		runner = bench.ScaleRunner(scale)
	}
	if runner != nil {
		return trajectory(runner, count, out, storeDir, against, allowMismatch, minEff)
	}

	suite := bench.Suite(scale)
	total := 0
	for _, b := range suite {
		total += len(b.Funcs)
	}
	fmt.Printf("suite: %d benchmarks, %d functions (scale %g)\n\n", len(suite), total, scale)

	switch fig {
	case "5":
		fig5(suite, strategies, weighted)
	case "6":
		fig6(suite, reps)
	case "7":
		fig7(suite)
	case "all":
		fig5(suite, strategies, weighted)
		fmt.Println()
		fig6(suite, reps)
		fmt.Println()
		fig7(suite)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: unknown figure %q\n", fig)
		return 2
	}
	return 0
}

func fig5(suite []bench.Benchmark, strategies []outofssa.Strategy, weighted bool) {
	rows := bench.Fig5For(suite, strategies)
	fmt.Print(bench.FormatFig5(suite, rows, false))
	if weighted {
		fmt.Println()
		fmt.Print(bench.FormatFig5(suite, rows, true))
	}
}

func fig6(suite []bench.Benchmark, reps int) {
	fmt.Print(bench.FormatFig6(suite, bench.Fig6(suite, reps)))
}

func fig7(suite []bench.Benchmark) {
	fmt.Print(bench.FormatFig7(bench.Fig7(suite)))
}

// trajectory measures one trajectory -count times, writes/stores the
// envelope, and gates against the baseline when one is named.
func trajectory(r bench.Runner, count int, out, storeDir, against string, allowMismatch bool, minEff float64) int {
	// Load a file baseline before measuring (and before -out overwrites it).
	var baseline *bench.Report
	if against != "" {
		if _, err := os.Stat(against); err == nil {
			baseline, err = bench.ReadReportFile(against)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
				return 1
			}
		}
	}

	rep, err := bench.Measure(r, count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	fmt.Print(bench.FormatReport(rep))

	if out != "" {
		if err := writeEnvelope(out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", out)
	}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		id, err := st.Append(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		fmt.Printf("stored %s (%s)\n", id, st.Dir())
	}

	if against == "" {
		return 0
	}
	if baseline == nil {
		// Not a file: resolve against the store.
		if storeDir == "" {
			fmt.Fprintf(os.Stderr, "ssabench: baseline %q is not a file and no -store is set\n", against)
			return 1
		}
		st, err := store.Open(storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		e, err := st.Resolve(against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		baseline = e.Report
	}
	res, err := compare.Compare(baseline, rep, compare.DefaultPolicies(rep.Trajectory, minEff), compare.Options{AllowMachineMismatch: allowMismatch})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	fmt.Println()
	fmt.Print(res.Format())
	if !res.OK() {
		return 1
	}
	return 0
}

func writeEnvelope(path string, rep *bench.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr // a failed flush at close also corrupts the envelope
	}
	return werr
}
