// Command ssabench regenerates the paper's evaluation figures on the
// synthetic SPEC CINT2000 stand-in suite:
//
//	ssabench -fig 5           # remaining copies per coalescing strategy
//	ssabench -fig 5 -strategy sharing   # one strategy vs the Intersect baseline
//	ssabench -fig 6 -reps 3   # translation speed per machinery combination
//	ssabench -fig 7           # memory footprint per machinery combination
//	ssabench -fig all         # everything
//
// -scale shrinks or grows the workload; -weighted adds the
// frequency-weighted companion of Figure 5; -workers sets the batch
// driver's worker pool for the untimed figures (0 = NumCPU; results are
// identical for any worker count, only wall-clock changes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/outofssa"
	"repro/outofssa/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, or all")
	scale := flag.Float64("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "timing repetitions for figure 6")
	weighted := flag.Bool("weighted", false, "also print the frequency-weighted figure 5 table")
	workers := flag.Int("workers", 0, "pipeline batch workers for figures 5 and 7 (0 = NumCPU)")
	strategy := flag.String("strategy", "all",
		"restrict figure 5 to one coalescing strategy: all, or one of "+strings.Join(outofssa.StrategyNames(), "|"))
	flag.Parse()

	strategies := outofssa.Strategies
	if *strategy != "all" {
		s, err := outofssa.ParseStrategy(*strategy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			os.Exit(2)
		}
		strategies = []outofssa.Strategy{s}
	}

	bench.Workers = *workers
	suite := bench.Suite(*scale)
	total := 0
	for _, b := range suite {
		total += len(b.Funcs)
	}
	fmt.Printf("suite: %d benchmarks, %d functions (scale %g)\n\n", len(suite), total, *scale)

	switch *fig {
	case "5":
		fig5(suite, strategies, *weighted)
	case "6":
		fig6(suite, *reps)
	case "7":
		fig7(suite)
	case "all":
		fig5(suite, strategies, *weighted)
		fmt.Println()
		fig6(suite, *reps)
		fmt.Println()
		fig7(suite)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig5(suite []bench.Benchmark, strategies []outofssa.Strategy, weighted bool) {
	rows := bench.Fig5For(suite, strategies)
	fmt.Print(bench.FormatFig5(suite, rows, false))
	if weighted {
		fmt.Println()
		fmt.Print(bench.FormatFig5(suite, rows, true))
	}
}

func fig6(suite []bench.Benchmark, reps int) {
	fmt.Print(bench.FormatFig6(suite, bench.Fig6(suite, reps)))
}

func fig7(suite []bench.Benchmark) {
	fmt.Print(bench.FormatFig7(bench.Fig7(suite)))
}
