// Command ssabench regenerates the paper's evaluation figures on the
// synthetic SPEC CINT2000 stand-in suite:
//
//	ssabench -fig 5           # remaining copies per coalescing strategy
//	ssabench -fig 5 -strategy sharing   # one strategy vs the Intersect baseline
//	ssabench -fig 6 -reps 3   # translation speed per machinery combination
//	ssabench -fig 7           # memory footprint per machinery combination
//	ssabench -fig all         # every paper figure (5, 6 and 7)
//
// Beyond the paper's figures it records the engine's own perf trajectories
// (long-running benchmarks, deliberately not part of -fig all):
//
//	ssabench -fig liveness -out BENCH_liveness.json
//	ssabench -fig coalesce -out BENCH_coalesce.json
//	ssabench -fig translate -out BENCH_translate.json
//	ssabench -fig translate -against BENCH_translate.json -out BENCH_translate.json
//
// -fig liveness benchmarks the worklist liveness engine against the
// pre-worklist round-robin fixpoint on a synthetic large-CFG corpus (deep
// loops, wide switch joins, dense φ pressure); -fig coalesce benchmarks the
// optimized interference query path (binary-search LiveAfter, packed
// def-point keys, pooled congruence scratch) against the kept reference
// path on a φ/copy-dense corpus; -fig translate benchmarks the end-to-end
// clone+translate steady state — the pooled-scratch/slab allocation path
// against the kept pre-pooling reference — across all Figure 5 strategies.
// All three write the machine-readable trajectory file CI archives per run.
// With -against, the translate trajectory additionally gates on the named
// committed baseline: any pooled row allocating more than 20% over the
// baseline's allocs/op fails the run (exit 1).
//
// -scale shrinks or grows the workload (the trajectory corpora included);
// -weighted adds the frequency-weighted companion of Figure 5; -workers
// sets the batch driver's worker pool for the untimed figures (0 = NumCPU;
// results are identical for any worker count, only wall-clock changes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/outofssa"
	"repro/outofssa/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, or all (paper figures); liveness and coalesce run the perf trajectories instead")
	scale := flag.Float64("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "timing repetitions for figure 6")
	weighted := flag.Bool("weighted", false, "also print the frequency-weighted figure 5 table")
	workers := flag.Int("workers", 0, "pipeline batch workers for figures 5 and 7 (0 = NumCPU)")
	out := flag.String("out", "", "with -fig liveness/coalesce/translate: also write the trajectory as JSON to this file")
	against := flag.String("against", "", "with -fig translate: gate pooled allocs/op against this committed baseline (fail on >20% regression)")
	strategy := flag.String("strategy", "all",
		"restrict figure 5 to one coalescing strategy: all, or one of "+strings.Join(outofssa.StrategyNames(), "|"))
	flag.Parse()

	strategies := outofssa.Strategies
	if *strategy != "all" {
		s, err := outofssa.ParseStrategy(*strategy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			os.Exit(2)
		}
		strategies = []outofssa.Strategy{s}
	}

	bench.Workers = *workers
	switch *fig { // the trajectories have their own corpora; no SPEC suite
	case "liveness":
		figLiveness(*scale, *out)
		return
	case "coalesce":
		figCoalesce(*scale, *out)
		return
	case "translate":
		figTranslate(*scale, *out, *against)
		return
	}
	suite := bench.Suite(*scale)
	total := 0
	for _, b := range suite {
		total += len(b.Funcs)
	}
	fmt.Printf("suite: %d benchmarks, %d functions (scale %g)\n\n", len(suite), total, *scale)

	switch *fig {
	case "5":
		fig5(suite, strategies, *weighted)
	case "6":
		fig6(suite, *reps)
	case "7":
		fig7(suite)
	case "all":
		fig5(suite, strategies, *weighted)
		fmt.Println()
		fig6(suite, *reps)
		fmt.Println()
		fig7(suite)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig5(suite []bench.Benchmark, strategies []outofssa.Strategy, weighted bool) {
	rows := bench.Fig5For(suite, strategies)
	fmt.Print(bench.FormatFig5(suite, rows, false))
	if weighted {
		fmt.Println()
		fmt.Print(bench.FormatFig5(suite, rows, true))
	}
}

func fig6(suite []bench.Benchmark, reps int) {
	fmt.Print(bench.FormatFig6(suite, bench.Fig6(suite, reps)))
}

func fig7(suite []bench.Benchmark) {
	fmt.Print(bench.FormatFig7(bench.Fig7(suite)))
}

func figLiveness(scale float64, out string) {
	rep := bench.LivenessTrajectory(scale)
	fmt.Print(bench.FormatLiveness(rep))
	writeTrajectory(out, rep.WriteJSON)
}

func figCoalesce(scale float64, out string) {
	rep := bench.CoalesceTrajectory(scale)
	fmt.Print(bench.FormatCoalesce(rep))
	writeTrajectory(out, rep.WriteJSON)
}

func figTranslate(scale float64, out, against string) {
	// Load the baseline before measuring (and before -out overwrites it).
	var baseline *bench.TranslateReport
	if against != "" {
		f, err := os.Open(against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			os.Exit(1)
		}
		baseline, err = bench.ReadTranslateReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			os.Exit(1)
		}
	}
	rep := bench.TranslateTrajectory(scale)
	fmt.Print(bench.FormatTranslate(rep))
	writeTrajectory(out, rep.WriteJSON)
	if baseline != nil {
		if violations := bench.CheckTranslateAllocs(rep, baseline, 0.20); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "ssabench: allocation regression: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("allocation gate: pooled allocs/op within 20% of the committed baseline")
	}
}

func writeTrajectory(out string, write func(io.Writer) error) {
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		os.Exit(1)
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr // a failed flush at close also corrupts the trajectory
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", werr)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s\n", out)
}
