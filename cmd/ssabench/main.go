// Command ssabench regenerates the paper's evaluation figures on the
// synthetic SPEC CINT2000 stand-in suite:
//
//	ssabench -fig 5           # remaining copies per coalescing strategy
//	ssabench -fig 5 -strategy sharing   # one strategy vs the Intersect baseline
//	ssabench -fig 6 -reps 3   # translation speed per machinery combination
//	ssabench -fig 7           # memory footprint per machinery combination
//	ssabench -fig all         # every paper figure (5, 6 and 7)
//
// Beyond the paper's figures it records the engine's own perf trajectories
// (long-running benchmarks, deliberately not part of -fig all):
//
//	ssabench -fig liveness -out BENCH_liveness.json
//	ssabench -fig coalesce -out BENCH_coalesce.json
//	ssabench -fig translate -out BENCH_translate.json
//	ssabench -fig translate -against BENCH_translate.json -out BENCH_translate.json
//	ssabench -fig scale -out BENCH_scale.json
//
// -fig liveness benchmarks the worklist liveness engine against the
// pre-worklist round-robin fixpoint on a synthetic large-CFG corpus (deep
// loops, wide switch joins, dense φ pressure); -fig coalesce benchmarks the
// optimized interference query path (binary-search LiveAfter, packed
// def-point keys, pooled congruence scratch) against the kept reference
// path on a φ/copy-dense corpus; -fig translate benchmarks the end-to-end
// clone+translate steady state — the pooled-scratch/slab allocation path
// against the kept pre-pooling reference — across all Figure 5 strategies;
// -fig scale sweeps the work-stealing batch driver over worker counts ×
// GOGC settings on a batch corpus and records the speedup-vs-cores curve
// with per-point parallel efficiency (speedup ÷ available cores). All four
// write the machine-readable trajectory file CI archives per run. With
// -against, the translate trajectory additionally gates on the named
// committed baseline: any pooled row allocating more than 20% over the
// baseline's allocs/op fails the run (exit 1). The scale trajectory gates
// on -mineff: parallel efficiency at 8 workers below the floor fails the
// run (0 disables the gate).
//
// -scale shrinks or grows the workload (the trajectory corpora included);
// -weighted adds the frequency-weighted companion of Figure 5; -workers
// sets the batch driver's worker pool for the untimed figures (0 =
// GOMAXPROCS; results are identical for any worker count, only wall-clock
// changes). -cpuprofile and -memprofile write pprof profiles of the run,
// so a flat spot found by the scale sweep can be attributed directly:
//
//	ssabench -fig scale -cpuprofile scale.cpu.pprof
//	go tool pprof scale.cpu.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/cmd/internal/profileflags"
	"repro/outofssa"
	"repro/outofssa/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, or all (paper figures); liveness, coalesce, translate and scale run the perf trajectories instead")
	scale := flag.Float64("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "timing repetitions for figure 6")
	weighted := flag.Bool("weighted", false, "also print the frequency-weighted figure 5 table")
	workers := flag.Int("workers", 0, "pipeline batch workers for figures 5 and 7 (0 = GOMAXPROCS)")
	out := flag.String("out", "", "with -fig liveness/coalesce/translate/scale: also write the trajectory as JSON to this file")
	against := flag.String("against", "", "with -fig translate: gate pooled allocs/op against this committed baseline (fail on >20% regression)")
	minEff := flag.Float64("mineff", 0.6, "with -fig scale: minimum parallel efficiency at 8 workers (0 disables the gate)")
	strategy := flag.String("strategy", "all",
		"restrict figure 5 to one coalescing strategy: all, or one of "+strings.Join(outofssa.StrategyNames(), "|"))
	profileflags.Register()
	flag.Parse()

	strategies := outofssa.Strategies
	if *strategy != "all" {
		s, err := outofssa.ParseStrategy(*strategy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			os.Exit(2)
		}
		strategies = []outofssa.Strategy{s}
	}

	bench.Workers = *workers
	os.Exit(run(*fig, *scale, *reps, *weighted, *out, *against, *minEff, strategies))
}

// run dispatches the figure and returns the process exit code. It exists
// (instead of os.Exit calls inside the figure functions) so the deferred
// profile writers always flush — an os.Exit on a gate failure would
// otherwise truncate the very profile needed to debug the regression.
func run(fig string, scale float64, reps int, weighted bool, out, against string, minEff float64, strategies []outofssa.Strategy) int {
	stop, err := profileflags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	defer stop()

	switch fig { // the trajectories have their own corpora; no SPEC suite
	case "liveness":
		return figLiveness(scale, out)
	case "coalesce":
		return figCoalesce(scale, out)
	case "translate":
		return figTranslate(scale, out, against)
	case "scale":
		return figScale(scale, out, minEff)
	}
	suite := bench.Suite(scale)
	total := 0
	for _, b := range suite {
		total += len(b.Funcs)
	}
	fmt.Printf("suite: %d benchmarks, %d functions (scale %g)\n\n", len(suite), total, scale)

	switch fig {
	case "5":
		fig5(suite, strategies, weighted)
	case "6":
		fig6(suite, reps)
	case "7":
		fig7(suite)
	case "all":
		fig5(suite, strategies, weighted)
		fmt.Println()
		fig6(suite, reps)
		fmt.Println()
		fig7(suite)
	default:
		fmt.Fprintf(os.Stderr, "ssabench: unknown figure %q\n", fig)
		return 2
	}
	return 0
}

func fig5(suite []bench.Benchmark, strategies []outofssa.Strategy, weighted bool) {
	rows := bench.Fig5For(suite, strategies)
	fmt.Print(bench.FormatFig5(suite, rows, false))
	if weighted {
		fmt.Println()
		fmt.Print(bench.FormatFig5(suite, rows, true))
	}
}

func fig6(suite []bench.Benchmark, reps int) {
	fmt.Print(bench.FormatFig6(suite, bench.Fig6(suite, reps)))
}

func fig7(suite []bench.Benchmark) {
	fmt.Print(bench.FormatFig7(bench.Fig7(suite)))
}

func figLiveness(scale float64, out string) int {
	rep := bench.LivenessTrajectory(scale)
	fmt.Print(bench.FormatLiveness(rep))
	return writeTrajectory(out, rep.WriteJSON)
}

func figCoalesce(scale float64, out string) int {
	rep := bench.CoalesceTrajectory(scale)
	fmt.Print(bench.FormatCoalesce(rep))
	return writeTrajectory(out, rep.WriteJSON)
}

func figTranslate(scale float64, out, against string) int {
	// Load the baseline before measuring (and before -out overwrites it).
	var baseline *bench.TranslateReport
	if against != "" {
		f, err := os.Open(against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
		baseline, err = bench.ReadTranslateReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
			return 1
		}
	}
	rep := bench.TranslateTrajectory(scale)
	fmt.Print(bench.FormatTranslate(rep))
	if code := writeTrajectory(out, rep.WriteJSON); code != 0 {
		return code
	}
	if baseline != nil {
		if violations := bench.CheckTranslateAllocs(rep, baseline, 0.20); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "ssabench: allocation regression: %s\n", v)
			}
			return 1
		}
		fmt.Println("allocation gate: pooled allocs/op within 20% of the committed baseline")
	}
	return 0
}

func figScale(scale float64, out string, minEff float64) int {
	rep := bench.ScaleTrajectory(scale)
	fmt.Print(bench.FormatScale(rep))
	if code := writeTrajectory(out, rep.WriteJSON); code != 0 {
		return code
	}
	if minEff > 0 {
		if violations := bench.CheckScaleEfficiency(rep, 8, minEff); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "ssabench: scalability regression: %s\n", v)
			}
			return 1
		}
		fmt.Printf("efficiency gate: parallel efficiency at 8 workers at least %.2f on every GOGC row\n", minEff)
	}
	return 0
}

func writeTrajectory(out string, write func(io.Writer) error) int {
	if out == "" {
		return 0
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", err)
		return 1
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr // a failed flush at close also corrupts the trajectory
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "ssabench: %v\n", werr)
		return 1
	}
	fmt.Printf("\nwrote %s\n", out)
	return 0
}
