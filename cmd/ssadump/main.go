// Command ssadump translates a textual SSA function out of SSA form and
// prints the result:
//
//	ssadump [flags] file.ssa     # or - for stdin
//
//	-strategy   coalescing strategy (see -help for the valid names)
//	-virtualize emulate φ copies, materialize on demand (Method III style)
//	-graph      use an interference graph (bit matrix)
//	-livecheck  fast liveness checking instead of liveness sets
//	-linear     linear congruence-class interference test
//	-parallel   keep parallel copies (skip sequentialization)
//	-stats      print translation statistics
//	-run        interpret before/after on comma-separated parameters
//
// The input grammar is documented on outofssa.Parse; see examples/ for
// samples.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/cmd/internal/profileflags"
	"repro/outofssa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ssadump: ")
	strategy := flag.String("strategy", "sharing",
		"coalescing strategy: "+strings.Join(outofssa.StrategyNames(), "|"))
	virtualize := flag.Bool("virtualize", false, "virtualize φ copies (Method III style)")
	graph := flag.Bool("graph", false, "use an interference graph")
	livecheck := flag.Bool("livecheck", true, "use fast liveness checking")
	linear := flag.Bool("linear", true, "use the linear class interference test")
	parallel := flag.Bool("parallel", false, "keep parallel copies in the output")
	stats := flag.Bool("stats", false, "print translation statistics")
	run := flag.String("run", "", "interpret before/after with these comma-separated parameters")
	profileflags.Register()
	flag.Parse()

	s, err := outofssa.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssadump: %v\n", err)
		os.Exit(2)
	}
	if s == outofssa.SreedharIII {
		*virtualize = true
		*graph = true
		*livecheck = false
	}
	if *graph {
		*livecheck = false
	}
	// dump (not main) owns the work so the deferred profile writers flush
	// before the process exits.
	os.Exit(dump(s, *virtualize, *graph, *livecheck, *linear, *parallel, *stats, *run))
}

func dump(s outofssa.Strategy, virtualize, graph, livecheck, linear, parallel, stats bool, run string) int {
	stop, err := profileflags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stop()

	tr, err := outofssa.New(
		outofssa.WithStrategy(s),
		outofssa.WithVirtualization(virtualize),
		outofssa.WithFastLiveness(livecheck),
		outofssa.WithInterferenceGraph(graph),
		outofssa.WithLinearClassTest(linear),
		outofssa.WithParallelCopies(parallel),
	)
	if err != nil {
		log.Print(err)
		return 1
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		log.Print(err)
		return 1
	}
	funcs, err := outofssa.ParseAll(src)
	if err != nil {
		log.Print(err)
		return 1
	}
	ctx := context.Background()
	for i, f := range funcs {
		if i > 0 {
			fmt.Println()
		}
		orig := outofssa.Clone(f)
		res, err := tr.Translate(ctx, f)
		if err != nil {
			log.Print(err)
			return 1
		}
		st := res.Stats
		fmt.Print(f)

		if stats {
			fmt.Fprintf(os.Stderr, "%s: blocks=%d vars=%d phis=%d affinities=%d remaining=%d final-copies=%d cycle-copies=%d splits=%d tests=%d\n",
				f.Name, st.Blocks, st.Vars, st.Phis, st.Affinities, st.RemainingCopies,
				st.FinalCopies, st.CycleCopies, st.SplitEdges, st.IntersectionTests)
		}
		if run != "" {
			params, err := parseParams(run)
			if err != nil {
				log.Print(err)
				return 1
			}
			want, err := outofssa.Interpret(orig, params, 1_000_000)
			if err != nil {
				log.Print(err)
				return 1
			}
			got, err := outofssa.Interpret(f, params, 1_000_000)
			if err != nil {
				log.Print(err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "%s: before ret=%d trace=%v | after ret=%d trace=%v | equivalent=%v\n",
				f.Name, want.Ret, want.Trace, got.Ret, got.Trace, outofssa.Equivalent(want, got))
			if !outofssa.Equivalent(want, got) {
				return 1
			}
		}
	}
	return 0
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseParams(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
