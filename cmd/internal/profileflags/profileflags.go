// Package profileflags is the one shared implementation of the
// -cpuprofile/-memprofile flags every command in this repo offers. It
// lives under cmd/internal so the commands can share it while the public
// API boundary (commands import only repro/outofssa) stays intact — it is
// tooling plumbing, not engine surface.
//
//	profileflags.Register()
//	flag.Parse()
//	stop, err := profileflags.Start()
//	if err != nil { ... }
//	defer stop()
//
// Start is a no-op returning a no-op stop when neither flag was given.
// Callers that os.Exit must route through a function whose deferred stop
// runs first (see cmd/ssabench's main→run split), or call stop explicitly
// before exiting — os.Exit skips defers and would truncate the profiles.
package profileflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuprofile *string
	memprofile *string
)

// Register installs -cpuprofile and -memprofile on the default flag set.
// Call it before flag.Parse; calling it twice panics like any duplicate
// flag definition.
func Register() {
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile = flag.String("memprofile", "", "write an allocation profile of the run to this file")
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// flushes the CPU profile and writes the allocation profile (-memprofile),
// and is safe to call when neither flag was set.
func Start() (stop func(), err error) {
	if cpuprofile == nil {
		return func() {}, nil // Register was never called
	}
	var cpuFile *os.File
	if *cpuprofile != "" {
		cpuFile, err = os.Create(*cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuprofile)
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "wrote allocation profile to %s\n", *memprofile)
		}
	}, nil
}
