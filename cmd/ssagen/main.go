// Command ssagen emits functions from the synthetic SPEC CINT2000 stand-in
// workload generator in the textual IR format, for inspection or for
// feeding cmd/ssadump:
//
//	ssagen -name 176.gcc -seed 176 -funcs 3           # SSA, copy-folded
//	ssagen -raw                                       # before SSA construction
//	ssagen | ssadump -strategy sharing -stats -run 3,4 -
//
// The SSA path runs the raw generator output through the front half of the
// pass pipeline — SSA construction, copy folding, verification — with
// loop-derived block frequencies installed from the pipeline's cached
// dominator tree. Output is deterministic for a given flag set. Note that
// it differs from cfggen.Generate (the bench suite's path): the pipeline
// folds every copy (-fold, on by default) rather than the generator's
// random 70% fraction, and the per-function RNG streams diverge, so the
// emitted functions are inspection samples of the same profile shape, not
// the benchmark functions themselves.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cfggen"
	"repro/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ssagen: ")
	name := flag.String("name", "sample", "benchmark name (labels the functions)")
	seed := flag.Int64("seed", 1, "generator seed")
	funcs := flag.Int("funcs", 1, "number of functions")
	stmts := flag.Int("stmts", 80, "maximum statement budget per function")
	raw := flag.Bool("raw", false, "emit pre-SSA code (multiple assignments, no φs)")
	fold := flag.Bool("fold", true, "apply SSA copy folding + DCE after construction")
	flag.Parse()

	p := cfggen.DefaultProfile(*name, *seed)
	p.Funcs = *funcs
	p.MaxStmts = *stmts
	p.MinStmts = *stmts / 3
	if *raw {
		p.Propagate = false
		for i, f := range cfggen.GenerateRaw(p) {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(f)
		}
		return
	}

	passes := []pipeline.Pass{pipeline.ConstructSSA()}
	if *fold {
		passes = append(passes, pipeline.CopyProp())
	}
	passes = append(passes,
		pipeline.VerifySSA(),
		pipeline.Pass{
			Name: "install-frequencies",
			Run: func(ctx *pipeline.Context) error {
				cfggen.InstallFrequencies(ctx.Func, ctx.Cache.Dom())
				return nil
			},
		},
	)
	pl := pipeline.New(passes...)
	for i, f := range cfggen.GenerateRaw(p) {
		if i > 0 {
			fmt.Println()
		}
		if _, err := pl.Run(f); err != nil {
			log.Fatalf("%s: %v", f.Name, err)
		}
		fmt.Print(f)
	}
}
