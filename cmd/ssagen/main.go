// Command ssagen emits functions from the synthetic SPEC CINT2000 stand-in
// workload generator in the textual IR format, for inspection or for
// feeding cmd/ssadump:
//
//	ssagen -name 176.gcc -seed 176 -funcs 3           # SSA, copy-folded
//	ssagen -raw                                       # before SSA construction
//	ssagen | ssadump -strategy sharing -stats -run 3,4 -
//
// Output is deterministic for a given flag set.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cfggen"
)

func main() {
	name := flag.String("name", "sample", "benchmark name (labels the functions)")
	seed := flag.Int64("seed", 1, "generator seed")
	funcs := flag.Int("funcs", 1, "number of functions")
	stmts := flag.Int("stmts", 80, "maximum statement budget per function")
	raw := flag.Bool("raw", false, "emit pre-SSA code (multiple assignments, no φs)")
	flag.Parse()

	p := cfggen.DefaultProfile(*name, *seed)
	p.Funcs = *funcs
	p.MaxStmts = *stmts
	p.MinStmts = *stmts / 3
	if *raw {
		p.Propagate = false
		for i, f := range cfggen.GenerateRaw(p) {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(f)
		}
		return
	}
	for i, f := range cfggen.Generate(p) {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(f)
	}
}
