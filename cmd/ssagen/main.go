// Command ssagen emits functions from the synthetic SPEC CINT2000 stand-in
// workload generator in the textual IR format, for inspection or for
// feeding cmd/ssadump:
//
//	ssagen -name 176.gcc -seed 176 -funcs 3           # SSA, copy-folded
//	ssagen -raw                                       # before SSA construction
//	ssagen -strategy sharing                          # translated out of SSA
//	ssagen | ssadump -strategy sharing -stats -run 3,4 -
//
// The SSA path runs the raw generator output through the front half of the
// pass pipeline — SSA construction, copy folding, verification — with
// loop-derived block frequencies installed (outofssa.BuildSSA). Passing
// -strategy additionally translates each function out of SSA with that
// strategy before printing. Output is deterministic for a given flag set.
// Note that it differs from the bench suite's generation path: BuildSSA
// folds every copy (-fold, on by default) rather than the generator's
// random 70% fraction, and the per-function RNG streams diverge, so the
// emitted functions are inspection samples of the same profile shape, not
// the benchmark functions themselves.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/cmd/internal/profileflags"
	"repro/outofssa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ssagen: ")
	name := flag.String("name", "sample", "benchmark name (labels the functions)")
	seed := flag.Int64("seed", 1, "generator seed")
	funcs := flag.Int("funcs", 1, "number of functions")
	stmts := flag.Int("stmts", 80, "maximum statement budget per function")
	raw := flag.Bool("raw", false, "emit pre-SSA code (multiple assignments, no φs)")
	fold := flag.Bool("fold", true, "apply SSA copy folding + DCE after construction")
	strategy := flag.String("strategy", "",
		"translate out of SSA with this coalescing strategy before printing: "+
			strings.Join(outofssa.StrategyNames(), "|"))
	profileflags.Register()
	flag.Parse()

	var tr *outofssa.Translator
	if *strategy != "" {
		if *raw {
			fmt.Fprintln(os.Stderr, "ssagen: -strategy needs SSA input; it cannot be combined with -raw")
			os.Exit(2)
		}
		s, err := outofssa.ParseStrategy(*strategy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssagen: %v\n", err)
			os.Exit(2)
		}
		if tr, err = outofssa.New(outofssa.WithStrategy(s)); err != nil {
			fmt.Fprintf(os.Stderr, "ssagen: %v\n", err)
			os.Exit(2)
		}
	}

	p := outofssa.DefaultProfile(*name, *seed)
	p.Funcs = *funcs
	p.MaxStmts = *stmts
	p.MinStmts = *stmts / 3
	// emit (not main) owns the work so the deferred profile writers flush
	// before the process exits.
	os.Exit(emit(p, *raw, *fold, tr))
}

func emit(p outofssa.Profile, raw, fold bool, tr *outofssa.Translator) int {
	stop, err := profileflags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stop()

	if raw {
		p.Propagate = false
		for i, f := range outofssa.GenerateRaw(p) {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(f)
		}
		return 0
	}

	ctx := context.Background()
	for i, f := range outofssa.GenerateRaw(p) {
		if i > 0 {
			fmt.Println()
		}
		if err := outofssa.BuildSSA(ctx, f, fold); err != nil {
			log.Printf("%s: %v", f.Name, err)
			return 1
		}
		if tr != nil {
			if _, err := tr.Translate(ctx, f); err != nil {
				log.Printf("%s: %v", f.Name, err)
				return 1
			}
		}
		fmt.Print(f)
	}
	return 0
}
