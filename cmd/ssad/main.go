// Command ssad is the out-of-SSA translation daemon: a long-lived HTTP
// server around the repro/outofssa engine (via repro/outofssa/serve) for
// JIT/compile-server style deployments where translation runs continuously
// under time and memory pressure.
//
//	ssad -addr :8377
//	ssagen -funcs 1 | curl -s --data-binary @- 'localhost:8377/v1/translate?strategy=sharing'
//	ssagen -funcs 8 | curl -sN --data-binary @- 'localhost:8377/v1/batch?quiet=true'
//	curl -s localhost:8377/v1/stats
//
// Endpoints: POST /v1/translate (one function → JSON), POST /v1/batch
// (many functions → NDJSON stream in completion order), GET /v1/stats
// (cumulative Figure 5-style counters, cache hit rates, latency
// quantiles), GET /healthz. Each request selects its own coalescing
// strategy and machinery options (JSON body or query parameters; see the
// serve package). The daemon sheds load with 429 + Retry-After once its
// in-flight slots and queue are full, and drains gracefully on
// SIGINT/SIGTERM: new work is refused with 503 while admitted requests run
// to completion (up to -drain).
//
// -admin opts into a second listener (bind it to loopback) with
// /debug/pprof/* and a duplicate /v1/stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/cmd/internal/profileflags"
	"repro/outofssa"
	"repro/outofssa/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ssad: ")
	addr := flag.String("addr", ":8377", "serving address")
	admin := flag.String("admin", "", "opt-in admin address for /debug/pprof and /v1/stats (e.g. 127.0.0.1:6060); empty disables")
	inflight := flag.Int("inflight", 0, "max concurrently admitted requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests queued for admission before 429 (0 = 4x inflight, negative = no queue)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (requests may ask for less via timeout_ms)")
	maxTimeout := flag.Duration("maxtimeout", 5*time.Minute, "ceiling on requested per-request deadlines")
	workers := flag.Int("workers", 0, "translation workers per /v1/batch request (0 = GOMAXPROCS)")
	memoEntries := flag.Int("memo-entries", 0, "max entries in the shared translation memo (0 = default 4096, negative disables memoization)")
	memoBytes := flag.Int64("memo-bytes", 0, "approximate byte budget of the translation memo (0 = default 256 MiB)")
	memoFile := flag.String("memo-file", "", "persist the translation memo across restarts: load from this file on boot, snapshot to it after drain")
	drain := flag.Duration("drain", 15*time.Second, "graceful drain window on SIGINT/SIGTERM before in-flight work is aborted")
	faultSpec := flag.String("faults", "", "arm failpoints, e.g. 'serve.decode=err:0.01,pipeline.outofssa=panic:every=500' (chaos testing; see -faults list)")
	faultSeed := flag.Int64("faults-seed", 1, "deterministic seed for probabilistic failpoint activations")
	profileflags.Register()
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ssad [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nPer-request strategy names (JSON \"strategy\" field or ?strategy=):\n  %s\n",
			strings.Join(outofssa.StrategyNames(), ", "))
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nRegistered failpoints for -faults (name=err|panic|sleep=DUR[:prob|:every=N|:once]):\n  %s\n",
			strings.Join(outofssa.FaultPoints(), ", "))
	}
	flag.Parse()
	if *faultSpec != "" {
		if err := outofssa.EnableFaults(*faultSpec, *faultSeed); err != nil {
			log.Fatal(err)
		}
		log.Printf("failpoints armed: %s (seed %d)", *faultSpec, *faultSeed)
	}
	os.Exit(run(*addr, *admin, serve.Config{
		MaxInFlight:    *inflight,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		BatchWorkers:   *workers,
		MemoEntries:    *memoEntries,
		MemoBytes:      *memoBytes,
	}, *drain, *memoFile))
}

// run owns the daemon's lifetime (and the deferred profile writers, which
// would be truncated by an os.Exit in main).
func run(addr, admin string, cfg serve.Config, drain time.Duration, memoFile string) int {
	stop, err := profileflags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stop()

	s := serve.New(cfg)
	if memoFile != "" {
		if s.Memo() == nil {
			log.Print("-memo-file ignored: memoization disabled (-memo-entries < 0)")
		} else {
			loadMemo(s, memoFile)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	httpSrv := &http.Server{Handler: s}

	var adminSrv *http.Server
	if admin != "" {
		aln, err := net.Listen("tcp", admin)
		if err != nil {
			log.Print(err)
			return 1
		}
		adminSrv = &http.Server{Handler: s.AdminHandler()}
		log.Printf("admin (pprof, stats) on http://%s", aln.Addr())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin server: %v", err)
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	ec := s.Config()
	log.Printf("serving on http://%s (inflight=%d queue=%d batch-workers=%d timeout=%s)",
		ln.Addr(), ec.MaxInFlight, ec.MaxQueue, ec.BatchWorkers, ec.DefaultTimeout)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Printf("server: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work crisply (503), then let admitted
	// requests finish within the window; past it, abort hard — in-flight
	// translations stop at their next pass boundary when their request
	// contexts die with the connections.
	log.Printf("signal received; draining (up to %s)", drain)
	s.Drain()
	dctx, dcancel := context.WithTimeout(context.Background(), drain)
	defer dcancel()
	clean := true
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("drain window expired; aborting in-flight requests: %v", err)
		httpSrv.Close()
		clean = false
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	// Persist the memo after drain (the snapshot holds the memo lock, so it
	// must not race live traffic). Even an aborted drain snapshots: the
	// memo only holds completed translations.
	if memoFile != "" && s.Memo() != nil {
		saveMemo(s, memoFile)
	}
	if clean {
		log.Print("drained cleanly")
		return 0
	}
	return 1
}

// loadMemo warms the server memo from path. A missing file is the normal
// first boot; anything else damaged is skipped line-by-line by the loader.
func loadMemo(s *serve.Server, path string) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			log.Printf("memo file %s not found; starting cold", path)
		} else {
			log.Printf("memo load: %v (starting cold)", err)
		}
		return
	}
	defer f.Close()
	loaded, skipped, err := s.Memo().Load(f)
	if err != nil {
		log.Printf("memo load %s: %v (starting cold)", path, err)
		return
	}
	log.Printf("memo restored from %s: %d entries (%d damaged lines skipped)", path, loaded, skipped)
}

// saveMemo snapshots the memo atomically: write a temp file in the target
// directory, then rename over path, so a crash mid-write never tears the
// previous snapshot.
func saveMemo(s *serve.Server, path string) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		log.Printf("memo snapshot: %v", err)
		return
	}
	defer os.Remove(tmp.Name())
	if err := s.Memo().Snapshot(tmp); err != nil {
		tmp.Close()
		log.Printf("memo snapshot: %v", err)
		return
	}
	if err := tmp.Close(); err != nil {
		log.Printf("memo snapshot: %v", err)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		log.Printf("memo snapshot: %v", err)
		return
	}
	st := s.Memo().Stats()
	log.Printf("memo snapshot written to %s (%d entries, ~%d bytes retained)", path, st.Entries, st.Bytes)
}
