// Command ssaload drives the ssad translation daemon at a sweep of
// offered-load points and records the serving-latency trajectory
// (BENCH_serve.json): client-observed throughput and p50/p90/p99 latency
// per concurrency level.
//
//	ssaload                              # self-host an in-process daemon over loopback
//	ssaload -addr http://127.0.0.1:8377  # drive an external ssad
//	ssaload -loads 1,4,16 -duration 5s -mode batch -batch 8 -out BENCH_serve.json
//
// With no -addr, ssaload starts the serve.Server in-process on a loopback
// listener and drives it over real HTTP — the same wire path as an
// external daemon, but reproducible in one command (`make bench-serve`).
// Clients are closed-loop: each issues requests back to back for the
// point's duration, so offered load is the client count. 429 load-shed
// responses are counted per point and backed off briefly; only successful
// requests enter the latency quantiles.
//
// The emitted report is the same envelope every trajectory produces —
// run metadata (commit, machine shape, GOMAXPROCS, GOGC, timestamp) plus
// one row per load point — written with -out, appended to the bench store
// with -store, and gated by the serve trajectory's standing policies
// (completed requests, no hard failures, coherent latency quantiles); a
// violation exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/outofssa"
	"repro/outofssa/bench"
	"repro/outofssa/bench/compare"
	"repro/outofssa/bench/store"
	"repro/outofssa/serve"
	"repro/outofssa/serve/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ssaload: ")
	addr := flag.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8377); empty self-hosts an in-process server over loopback")
	loads := flag.String("loads", "1,2,4", "comma-separated offered-load points (concurrent closed-loop clients)")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per load point")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "untimed warmup before the first point (JIT the pools and caches)")
	funcs := flag.Int("funcs", 64, "distinct corpus functions to cycle through")
	seed := flag.Int64("seed", 7103, "corpus generator seed")
	mode := flag.String("mode", "translate", "request shape: translate (one function per request) or batch (NDJSON streaming)")
	batch := flag.Int("batch", 8, "functions per request in -mode batch")
	strategy := flag.String("strategy", "sharing",
		"per-request coalescing strategy: "+strings.Join(outofssa.StrategyNames(), "|"))
	inflight := flag.Int("inflight", 0, "self-hosted server: max in-flight requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "self-hosted server: admission queue depth (0 = sized to the largest load point)")
	workers := flag.Int("workers", 0, "self-hosted server: batch workers per request (0 = GOMAXPROCS)")
	out := flag.String("out", "", "write the report envelope as JSON to this file")
	storeDir := flag.String("store", "", "append the envelope to this bench store directory")
	commit := flag.String("commit", "", "commit id recorded in the envelope (default $SSABENCH_COMMIT)")
	dup := flag.Bool("dup", false, "memoization trajectory: near-duplicate corpus, cold/warm batch passes + differential oracle locally, then daemon traffic with memo hit rate (writes a memo report, not a serve report)")
	clones := flag.Int("clones", 3, "near-duplicate clones per base function in -dup mode")
	reps := flag.Int("reps", 3, "best-of repetitions per timed batch pass in -dup mode")
	flag.Parse()
	if *commit != "" {
		bench.Commit = *commit
	}
	if *dup {
		os.Exit(runDup(*addr, *loads, *duration, *warmup, *funcs, *seed, *clones, *reps, *strategy, *inflight, *queue, *workers, *out, *storeDir))
	}
	os.Exit(run(*addr, *loads, *duration, *warmup, *funcs, *seed, *mode, *batch, *strategy, *inflight, *queue, *workers, *out, *storeDir))
}

func run(addr, loadsCSV string, duration, warmup time.Duration, funcs int, seed int64, mode string, batchN int, strategy string, inflight, queue, workers int, out, storeDir string) int {
	if _, err := outofssa.ParseStrategy(strategy); err != nil {
		fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
		return 2
	}
	if mode != "translate" && mode != "batch" {
		fmt.Fprintf(os.Stderr, "ssaload: unknown mode %q (translate or batch)\n", mode)
		return 2
	}
	loads, err := parseLoads(loadsCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
		return 2
	}

	// Deterministic corpus, rendered once to wire form.
	p := outofssa.DefaultProfile("serveload", seed)
	p.Funcs = funcs
	var sources []string
	for _, f := range outofssa.Generate(p) {
		sources = append(sources, f.String())
	}
	if mode == "batch" {
		sources = regroup(sources, batchN)
	}

	rep := bench.NewReport("serve", 1)
	rep.Count = 1
	rep.SetParam("mode", mode)
	rep.SetParam("strategy", strategy)
	rep.SetParam("corpus_funcs", strconv.Itoa(funcs))
	if mode == "batch" {
		rep.SetParam("batch", strconv.Itoa(batchN))
	}

	if addr == "" {
		maxLoad := loads[0]
		for _, l := range loads {
			maxLoad = max(maxLoad, l)
		}
		if queue == 0 {
			// Size the queue to the sweep so the committed trajectory
			// measures latency under load, not the 429 shed path (which
			// has its own tests); pass -queue to study shedding.
			queue = maxLoad
		}
		srv := serve.New(serve.Config{MaxInFlight: inflight, MaxQueue: queue, BatchWorkers: workers})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
			return 1
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		addr = "http://" + ln.Addr().String()
		cfg := srv.Config()
		inflight, workers = cfg.MaxInFlight, cfg.BatchWorkers
		rep.SetParam("addr", "self-hosted")
	} else {
		rep.SetParam("addr", addr)
	}
	rep.SetParam("inflight", strconv.Itoa(inflight))
	rep.SetParam("workers", strconv.Itoa(workers))

	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	cl := client.New(addr, hc)

	if warmup > 0 {
		drive(cl, sources, mode, strategy, 1, warmup)
	}
	for _, clients := range loads {
		pt := drive(cl, sources, mode, strategy, clients, duration)
		bench.AddServePoint(rep, pt)
		fmt.Printf("clients=%d: %.1f req/s, %.1f funcs/s, p50=%.0fus p99=%.0fus (%d requests, %d 429s, %d failures)\n",
			pt.Clients, pt.RequestsPerSec, pt.FuncsPerSec, pt.P50Micros, pt.P99Micros,
			pt.Requests, pt.Overloaded, pt.Failures)
	}

	fmt.Println()
	fmt.Print(bench.FormatReport(rep))
	if st, err := cl.Stats(context.Background()); err == nil {
		fmt.Printf("\ndaemon view: %d funcs ok, %d canceled, cache hit rate %.2f, server p50=%.0fus p99=%.0fus\n",
			st.Functions.OK, st.Functions.Canceled, st.Cache.HitRate, st.Latency.P50Micros, st.Latency.P99Micros)
	}

	if code := emit(rep, out, storeDir); code != 0 {
		return code
	}

	if res := compare.Check(rep, compare.DefaultPolicies("serve", 0)); !res.OK() {
		for _, v := range res.Messages() {
			fmt.Fprintf(os.Stderr, "ssaload: smoke gate: %s\n", v)
		}
		return 1
	}
	fmt.Println("smoke gate: every point served with coherent latency quantiles and no hard failures")
	return 0
}

// runDup is the -dup entry point: the memoization trajectory. The batch
// half (uncached / memo-cold / memo-warm passes plus the differential
// oracle on every case × strategy row) runs in-process via bench; the
// daemon half replays the same near-duplicate corpus against a memo-enabled
// server and reads the memo hit rate back from /v1/stats.
func runDup(addr, loadsCSV string, duration, warmup time.Duration, funcs int, seed int64, clones, reps int, strategy string, inflight, queue, workers int, out, storeDir string) int {
	if _, err := outofssa.ParseStrategy(strategy); err != nil {
		fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
		return 2
	}
	loads, err := parseLoads(loadsCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
		return 2
	}
	clients := loads[0]

	corpus := bench.MemoCorpus(funcs, clones, seed)
	rep := bench.NewReport("memo", 1)
	rep.Count = 1
	rep.SetParam("base_funcs", strconv.Itoa(funcs))
	rep.SetParam("clones", strconv.Itoa(clones))
	rep.SetParam("seed", strconv.FormatInt(seed, 10))
	if err := bench.RunMemoBatch(rep, corpus, workers, reps); err != nil {
		fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
		return 1
	}

	var sources []string
	for _, f := range corpus {
		sources = append(sources, f.String())
	}

	if addr == "" {
		srv := serve.New(serve.Config{MaxInFlight: inflight, MaxQueue: max(queue, clients), BatchWorkers: workers})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
			return 1
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		addr = "http://" + ln.Addr().String()
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	cl := client.New(addr, hc)

	if warmup > 0 {
		drive(cl, sources, "translate", strategy, 1, warmup)
	}
	before, berr := cl.Stats(context.Background())
	pt := drive(cl, sources, "translate", strategy, clients, duration)
	after, aerr := cl.Stats(context.Background())

	memoHitRate := 0.0
	if berr == nil && aerr == nil && before.Memo != nil && after.Memo != nil {
		hits := after.Memo.Hits - before.Memo.Hits
		misses := after.Memo.Misses - before.Memo.Misses
		if hits+misses > 0 {
			memoHitRate = float64(hits) / float64(hits+misses)
		}
	}
	bench.AddMemoDaemonPoint(rep, pt, memoHitRate)

	fmt.Print(bench.FormatReport(rep))

	if code := emit(rep, out, storeDir); code != 0 {
		return code
	}

	policies := append(compare.DefaultPolicies("memo", 0), compare.DaemonPolicies()...)
	if res := compare.Check(rep, policies); !res.OK() {
		for _, v := range res.Messages() {
			fmt.Fprintf(os.Stderr, "ssaload: memo gate: %s\n", v)
		}
		return 1
	}
	fmt.Println("memo gate: warm >=2x faster than cold, full warm hit rate, every differential row clean, daemon memo engaged")
	return 0
}

// emit writes the envelope to -out and/or appends it to the -store.
func emit(rep *bench.Report, out, storeDir string) int {
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ssaload: %v\n", werr)
			return 1
		}
		fmt.Printf("\nwrote %s\n", out)
	}
	if storeDir != "" {
		st, err := store.Open(storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
			return 1
		}
		id, err := st.Append(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssaload: %v\n", err)
			return 1
		}
		fmt.Printf("stored %s (%s)\n", id, st.Dir())
	}
	return 0
}

// drive runs one closed-loop load point and reduces it to a ServePoint.
func drive(cl *client.Client, sources []string, mode, strategy string, clients int, d time.Duration) bench.ServePoint {
	var (
		wg         sync.WaitGroup
		reqs       atomic.Int64
		fails      atomic.Int64
		overloaded atomic.Int64
		funcs      atomic.Int64
		next       atomic.Int64
		mu         sync.Mutex
	)
	var lats []time.Duration
	// Shed responses back off through the client's RetryPolicy — the shared
	// backoff implementation — instead of a loop here. Every 429 still
	// lands in the overloaded counter via the OnRetry hook (retried) or the
	// error branch (retries exhausted); the hint cap keeps a saturated
	// point alive rather than parked on a long server hint.
	rcl := cl.WithRetry(client.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		OnRetry: func(_ int, err error, _ time.Duration) {
			if _, ok := client.IsOverloaded(err); ok {
				overloaded.Add(1)
			}
		},
	})
	deadline := time.Now().Add(d)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			ctx := context.Background()
			for time.Now().Before(deadline) {
				src := sources[int(next.Add(1))%len(sources)]
				req := serve.TranslateRequest{Source: src, Strategy: strategy, Quiet: true}
				t0 := time.Now()
				var err error
				var done int64 = 1
				if mode == "batch" {
					var sum *serve.BatchSummary
					sum, err = rcl.Batch(ctx, req, nil)
					if err == nil {
						done = int64(sum.OK)
						if sum.Failed > 0 {
							err = errors.New("batch contained failed functions")
						}
					}
				} else {
					_, err = rcl.Translate(ctx, req)
				}
				lat := time.Since(t0)
				if err != nil {
					if _, ok := client.IsOverloaded(err); ok {
						overloaded.Add(1)
						continue
					}
					fails.Add(1)
					continue
				}
				reqs.Add(1)
				funcs.Add(done)
				local = append(local, lat)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	pt := bench.ServePoint{
		Clients:     clients,
		Requests:    reqs.Load(),
		Failures:    fails.Load(),
		Overloaded:  overloaded.Load(),
		Funcs:       funcs.Load(),
		DurationSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		pt.RequestsPerSec = float64(pt.Requests) / elapsed.Seconds()
		pt.FuncsPerSec = float64(pt.Funcs) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(f float64) float64 {
			i := int(f * float64(len(lats)-1))
			return float64(lats[i].Nanoseconds()) / 1e3
		}
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		pt.P50Micros = q(0.50)
		pt.P90Micros = q(0.90)
		pt.P99Micros = q(0.99)
		pt.MaxMicros = float64(lats[len(lats)-1].Nanoseconds()) / 1e3
		pt.MeanMicros = float64(sum.Nanoseconds()) / float64(len(lats)) / 1e3
	}
	return pt
}

// regroup joins consecutive single-function sources into batch sources of
// n functions each.
func regroup(sources []string, n int) []string {
	if n < 1 {
		n = 1
	}
	var out []string
	for i := 0; i < len(sources); i += n {
		end := min(i+n, len(sources))
		out = append(out, strings.Join(sources[i:end], "\n"))
	}
	return out
}

func parseLoads(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid load point %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load points")
	}
	return out, nil
}
