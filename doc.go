// Package repro reproduces "Revisiting Out-of-SSA Translation for
// Correctness, Code Quality, and Efficiency" (Boissinot, Darte, Rastello,
// Dupont de Dinechin, Guillon — CGO 2009) as a self-contained Go library.
//
// The public surface is package repro/outofssa: a Translator built from
// functional options, context-aware single and batch translation with
// streaming per-function results, typed *PassError failures, the textual
// IR parser, the interpreter oracle, and the synthetic workload
// generator; repro/outofssa/bench regenerates the paper's Figures 5-7.
//
// The engine lives under internal/ and may change without notice: the
// paper's translator in internal/core; its substrates (IR, dominance,
// liveness, fast liveness checking, interference, congruence classes,
// parallel-copy sequentialization, the Sreedhar methods, workload
// generation, interpretation) each in their own package; and
// internal/pipeline, which assembles everything into a pass pipeline over
// the shared analysis cache of internal/analysis with a concurrent,
// cancellable batch driver. cmd/ssabench regenerates the figures;
// cmd/ssadump translates textual SSA functions; cmd/ssagen emits
// generator output. See README.md and DESIGN.md for the map.
package repro
