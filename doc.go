// Package repro reproduces "Revisiting Out-of-SSA Translation for
// Correctness, Code Quality, and Efficiency" (Boissinot, Darte, Rastello,
// Dupont de Dinechin, Guillon — CGO 2009) as a self-contained Go library.
//
// The paper's translator lives in internal/core; the substrates it depends
// on (IR, dominance, liveness, fast liveness checking, interference,
// congruence classes, parallel-copy sequentialization, the Sreedhar
// methods, a synthetic SPEC CINT2000 workload generator and an interpreter
// used as a correctness oracle) each live in their own internal package.
// internal/pipeline assembles everything into a pass pipeline over the
// shared analysis cache of internal/analysis, with a concurrent batch
// driver (pipeline.RunBatch) for whole function sets. cmd/ssabench
// regenerates the paper's Figures 5-7; cmd/ssadump translates textual SSA
// functions. See README.md and DESIGN.md for the map.
package repro
